// Command chcd deploys a CHC chain described by a JSON config, runs a trace
// through it (from a file or generated), and reports chain statistics.
//
// Example config:
//
//	{
//	  "vertices": [
//	    {"name": "nat", "nf": "nat", "instances": 2, "backend": "chc", "mode": "eocna"},
//	    {"name": "ids", "nf": "portscan", "backend": "chc", "mode": "eocna"},
//	    {"name": "dpi", "nf": "trojan", "backend": "chc", "mode": "eocna", "offpath": true}
//	  ]
//	}
//
// Non-linear deployments add a branch spec: one ordered vertex path per
// traffic class ("tcp" / "udp" / "other", classified by IP protocol at the
// root). Paths may share vertices (fork/rejoin); omitting "paths" keeps
// the linear declaration order.
//
//	{
//	  "vertices": [
//	    {"name": "nat", "nf": "nat"},
//	    {"name": "ids", "nf": "portscan"},
//	    {"name": "lb", "nf": "lb"}
//	  ],
//	  "paths": [
//	    {"class": "tcp", "vertices": ["nat", "lb"]},
//	    {"class": "udp", "vertices": ["ids", "lb"]}
//	  ]
//	}
//
// Usage:
//
//	chcd -config chain.json -trace trace.chct
//	chcd -config chain.json -flows 500 -gbps 2
//	chcd -config chain.json -shards 4          # 4-shard datastore tier
//	chcd -config dag.json -udp-frac 0.4        # mixed-class traffic for a fork
//	chcd -config dag.json -live -json out.json # real goroutines + wall clock
//
// Live mode (-live) runs the same chain on internal/livenet: real
// goroutines, channels and wall-clock time. The run reports achieved
// packet rate, goodput and end-to-end latency percentiles; -json writes
// them machine-readably and -min-pps N exits nonzero if the sustained
// ingest rate falls below N (the CI perf gate).
//
// Reconfiguration goes through the chain's declarative Controller. In
// live mode -admin ADDR serves it as an HTTP JSON API while the run is
// active:
//
//	GET  /spec            observed DeploymentSpec
//	GET  /status          controller status: spec, reconcile log, autoscaler counters
//	POST /spec            apply a DeploymentSpec; responds with the emitted actions
//	POST /drain/{vertex}  take one replica of the vertex out of service
//
// -autoscale VERTEX starts the metrics-driven autoscaling policy on that
// vertex (band tuned by -as-low/-as-high pps, bounds by -as-min/-as-max),
// and the -json report's "controller" block records whether it ran —
// the live-soak CI gate asserts autoscaler_evals > 0.
//
// Multi-process deployments split one chain across OS processes (real TCP
// via internal/netnet; DESIGN.md §12). The config file gains a "nodes"
// section placing endpoints on named nodes:
//
//	{
//	  "vertices": [{"name": "nat", "nf": "nat", "instances": 2}],
//	  "nodes": [
//	    {"name": "w1", "addr": "127.0.0.1:7101", "admin": "127.0.0.1:8101",
//	     "endpoints": ["root0", "sink", "store0", "driver", "framework", "v1"]},
//	    {"name": "w2", "addr": "127.0.0.1:7102", "admin": "127.0.0.1:8102",
//	     "endpoints": ["v1.i2"]}
//	  ]
//	}
//
// Then each process runs one node, and a coordinator drives the run:
//
//	chcd worker -config chain.json -node w1
//	chcd worker -config chain.json -node w2
//	chcd coordinator -config chain.json -flows 300 -json report.json
//
// Every worker builds the identical chain (same IDs, partition map and
// topology) but spawns only the components homed on its node; cross-node
// packets and store RPCs ride TCP through the wire codec. Workers serve
// the admin API on their node's "admin" address, extended with GET
// /health, POST /run (root-owner node only: pace a trace through the
// chain and return the run report) and POST /failover (replace a crashed
// instance, optionally re-homing the replacement). The coordinator
// health-checks every worker, broadcasts spec changes, starts the run,
// and — when a worker dies mid-run (e.g. SIGKILL) — broadcasts failover
// verbs for the dead node's instances to the survivors, exercising the
// §5.4 story across real process boundaries.
//
// The first positional argument selects the mode: "run" (the single
// process behavior above), "worker", or "coordinator". A first argument
// beginning with '-' dispatches to "run" for compatibility with existing
// flat-flag invocations.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"chc/internal/nf"
	nflb "chc/internal/nf/lb"
	nfnat "chc/internal/nf/nat"
	nfps "chc/internal/nf/portscan"
	nftrojan "chc/internal/nf/trojan"
	"chc/internal/packet"
	"chc/internal/runtime"
	"chc/internal/store"
	"chc/internal/trace"
	"chc/internal/transport"
)

// vertexJSON is one chain vertex in the config file.
type vertexJSON struct {
	Name      string `json:"name"`
	NF        string `json:"nf"` // nat | portscan | trojan | lb | pass
	Instances int    `json:"instances"`
	Backend   string `json:"backend"` // chc | traditional | locking
	Mode      string `json:"mode"`    // eo | eoc | eocna
	OffPath   bool   `json:"offpath"`
	Backends  int    `json:"backends"` // for lb
}

// pathJSON is one traffic class's branch through the policy DAG.
type pathJSON struct {
	Class    string   `json:"class"` // tcp | udp | other
	Vertices []string `json:"vertices"`
}

// nodeJSON is one node of a multi-process deployment: a netnet dial
// address, the admin API address its worker serves, and the endpoints it
// hosts (prefix matching applies, so "v1" homes every v1 instance not
// claimed elsewhere — including failover replacements minted later).
type nodeJSON struct {
	Name      string   `json:"name"`
	Addr      string   `json:"addr"`
	Admin     string   `json:"admin"`
	Endpoints []string `json:"endpoints"`
}

type configJSON struct {
	Vertices []vertexJSON `json:"vertices"`
	Seed     int64        `json:"seed"`
	// Shards sizes the datastore tier (consistent-hash key partitioning);
	// 0 or 1 deploys the single store server.
	Shards int `json:"shards"`
	// Paths, when present, generalize the chain into a policy DAG: one
	// ordered vertex path per traffic class, with the root classifying
	// packets by IP protocol. Empty keeps the linear declaration order.
	Paths []pathJSON `json:"paths"`
	// Nodes, when present, declare the multi-process deployment's nodes
	// (chcd worker / coordinator modes). Ignored by plain "chcd run".
	Nodes []nodeJSON `json:"nodes"`
}

// nodeSpecs converts the config's node section to transport placement.
func (c configJSON) nodeSpecs() []transport.NodeSpec {
	var out []transport.NodeSpec
	for _, n := range c.Nodes {
		out = append(out, transport.NodeSpec{Name: n.Name, Addr: n.Addr, Endpoints: n.Endpoints})
	}
	return out
}

// adminOf returns the admin address of the named node.
func (c configJSON) adminOf(node string) string {
	for _, n := range c.Nodes {
		if n.Name == node {
			return n.Admin
		}
	}
	return ""
}

func loadConfig(path string) configJSON {
	if path == "" {
		fmt.Fprintln(os.Stderr, "chcd: -config is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var cfg configJSON
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fatal(fmt.Errorf("parse config: %w", err))
	}
	if len(cfg.Vertices) == 0 {
		fatal(fmt.Errorf("config has no vertices"))
	}
	return cfg
}

// passNF forwards packets unchanged.
type passNF struct{}

func (passNF) Name() string           { return "pass" }
func (passNF) Decls() []store.ObjDecl { return nil }
func (passNF) Process(ctx *nf.Ctx, pkt *packet.Packet) []*packet.Packet {
	return []*packet.Packet{pkt}
}

func makeNF(v vertexJSON) (func() nf.NF, func(*runtime.Vertex), error) {
	noSeed := func(*runtime.Vertex) {}
	switch v.NF {
	case "nat":
		return func() nf.NF { return nfnat.New() }, func(vx *runtime.Vertex) {
			vx.Seed(func(apply func(store.Request)) { nfnat.New().SeedPorts(apply) })
		}, nil
	case "portscan":
		return func() nf.NF { return nfps.New() }, noSeed, nil
	case "trojan":
		return func() nf.NF { return nftrojan.New() }, noSeed, nil
	case "lb":
		n := v.Backends
		if n == 0 {
			n = 8
		}
		return func() nf.NF { return nflb.New(n) }, func(vx *runtime.Vertex) {
			vx.Seed(func(apply func(store.Request)) { nflb.New(n).SeedServers(apply) })
		}, nil
	case "pass", "":
		return func() nf.NF { return passNF{} }, noSeed, nil
	default:
		return nil, nil, fmt.Errorf("unknown nf %q", v.NF)
	}
}

func parseBackend(s string) (runtime.BackendKind, error) {
	switch s {
	case "chc", "":
		return runtime.BackendCHC, nil
	case "traditional":
		return runtime.BackendTraditional, nil
	case "locking":
		return runtime.BackendLocking, nil
	default:
		return 0, fmt.Errorf("unknown backend %q", s)
	}
}

func parseMode(s string) (store.Mode, error) {
	switch s {
	case "eo":
		return store.ModeEO, nil
	case "eoc":
		return store.ModeEOC, nil
	case "eocna", "":
		return store.ModeEOCNA, nil
	default:
		return store.Mode{}, fmt.Errorf("unknown mode %q", s)
	}
}

func main() {
	args := os.Args[1:]
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, rest := args[0], args[1:]
		switch cmd {
		case "run":
			runMain(rest)
		case "worker":
			workerMain(rest)
		case "coordinator":
			coordinatorMain(rest)
		default:
			fmt.Fprintf(os.Stderr, "chcd: unknown command %q (want run, worker or coordinator)\n", cmd)
			os.Exit(2)
		}
		return
	}
	// Flat-flag compatibility: a first argument starting with '-' (or no
	// arguments at all) is the historical single-process CLI, dispatched
	// to "chcd run" unchanged.
	runMain(args)
}

// chainTuning is the flag group shared by every mode that builds a chain.
type chainTuning struct {
	shards       *int
	ckptInterval *time.Duration
	ckptRetain   *int
}

func addChainTuning(fs *flag.FlagSet) chainTuning {
	return chainTuning{
		shards:       fs.Int("shards", 0, "datastore shard servers (overrides config; 0 keeps config/default)"),
		ckptInterval: fs.Duration("ckpt-interval", 0, "periodic durable store checkpoints + WAL truncation (0 disables)"),
		ckptRetain:   fs.Int("ckpt-retain", 0, "committed checkpoints each shard retains (0 keeps the default of 2)"),
	}
}

func (ct chainTuning) apply(cfg configJSON, ccfg *runtime.ChainConfig) {
	if cfg.Seed != 0 {
		ccfg.Seed = cfg.Seed
	}
	ccfg.StoreShards = cfg.Shards
	if *ct.shards > 0 {
		ccfg.StoreShards = *ct.shards
	}
	ccfg.CheckpointInterval = *ct.ckptInterval
	ccfg.CheckpointRetain = *ct.ckptRetain
}

// traceTuning is the flag group shared by every mode that offers traffic.
type traceTuning struct {
	tracePath *string
	flows     *int
	gbps      *int64
	udpFrac   *float64
	settle    *time.Duration
}

func addTraceTuning(fs *flag.FlagSet) traceTuning {
	return traceTuning{
		tracePath: fs.String("trace", "", "trace file (from tracegen); empty generates one"),
		flows:     fs.Int("flows", 500, "generated trace connections"),
		gbps:      fs.Int64("gbps", 2, "offered load in Gbps"),
		udpFrac:   fs.Float64("udp-frac", 0, "fraction of generated flows as UDP (drives DAG fork classes)"),
		settle:    fs.Duration("settle", 500*time.Millisecond, "post-trace settle time (virtual)"),
	}
}

func (tt traceTuning) load(seed int64) *trace.Trace {
	if *tt.tracePath != "" {
		f, err := os.Open(*tt.tracePath)
		if err != nil {
			fatal(err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		return tr
	}
	tr := trace.Generate(trace.Config{Seed: seed, Flows: *tt.flows,
		PktsPerFlowMean: 16, PayloadMedian: 1394, Hosts: 32, Servers: 16,
		UDPFrac: *tt.udpFrac})
	tr.Pace(*tt.gbps * 1_000_000_000)
	return tr
}

// buildChain compiles the config into a deployed chain on ccfg's
// substrate: topology, vertex specs, Start, then the NF seeders (which
// self-gate to the seeding instance's home node on SubstrateNet).
func buildChain(cfg configJSON, ccfg runtime.ChainConfig) *runtime.Chain {
	if len(cfg.Paths) > 0 {
		topo := &runtime.TopologySpec{}
		for _, p := range cfg.Paths {
			topo.Paths = append(topo.Paths, runtime.PathSpec{Class: p.Class, Vertices: p.Vertices})
		}
		ccfg.Topology = topo
	}
	var specs []runtime.VertexSpec
	var seeders []func(*runtime.Vertex)
	for _, v := range cfg.Vertices {
		mk, seeder, err := makeNF(v)
		if err != nil {
			fatal(err)
		}
		backend, err := parseBackend(v.Backend)
		if err != nil {
			fatal(err)
		}
		mode, err := parseMode(v.Mode)
		if err != nil {
			fatal(err)
		}
		specs = append(specs, runtime.VertexSpec{
			Name: v.Name, Make: mk, Instances: v.Instances,
			Backend: backend, Mode: mode, OffPath: v.OffPath,
		})
		seeders = append(seeders, seeder)
	}
	ch := runtime.New(ccfg, specs...)
	ch.Start()
	for i, seeder := range seeders {
		seeder(ch.Vertices[i])
	}
	return ch
}

// runMain is the single-process mode: deploy, run one trace, report.
func runMain(args []string) {
	fs := flag.NewFlagSet("chcd run", flag.ExitOnError)
	cfgPath := fs.String("config", "", "chain config JSON (required)")
	tt := addTraceTuning(fs)
	ct := addChainTuning(fs)
	live := fs.Bool("live", false, "run on real goroutines and wall-clock time (livenet)")
	jsonPath := fs.String("json", "", "write a machine-readable run report to this path (- for stdout)")
	minPPS := fs.Float64("min-pps", 0, "exit nonzero if sustained ingest pkts/s falls below this (live perf gate)")
	admin := fs.String("admin", "", "serve the controller admin API (HTTP JSON) on this address while the run is active (live mode only)")
	autoscale := fs.String("autoscale", "", "start the metrics-driven autoscaler on this vertex")
	asLow := fs.Float64("as-low", 3_000, "autoscaler low band edge (pkts/s per instance)")
	asHigh := fs.Float64("as-high", 20_000, "autoscaler high band edge (pkts/s per instance)")
	asMin := fs.Int("as-min", 1, "autoscaler minimum replicas")
	asMax := fs.Int("as-max", 4, "autoscaler maximum replicas")
	fs.Parse(args)

	cfg := loadConfig(*cfgPath)
	ccfg := runtime.DefaultChainConfig()
	ccfg.DefaultServiceTime = 2 * time.Microsecond
	ccfg.DefaultThreads = 2
	if *live {
		ccfg = runtime.LiveChainConfig()
	}
	ct.apply(cfg, &ccfg)
	ch := buildChain(cfg, ccfg)
	ctl := ch.Controller()
	if *autoscale != "" {
		interval := 50 * time.Millisecond
		if !*live {
			interval = 2 * time.Millisecond // DES: virtual-time sampling
		}
		if _, err := ctl.StartAutoscaler(runtime.AutoscalerConfig{
			Vertex: *autoscale, Min: *asMin, Max: *asMax,
			LowPPS: *asLow, HighPPS: *asHigh, Interval: interval,
		}); err != nil {
			fatal(err)
		}
	}
	var adminSrv *http.Server
	if *admin != "" {
		if !*live {
			fatal(errors.New("-admin requires -live (the DES has no real-time event loop to serve HTTP against)"))
		}
		adminSrv = startAdmin(*admin, ctl)
	}

	tr := tt.load(ccfg.Seed)

	mode := "sim"
	if *live {
		mode = "live"
	}
	fmt.Printf("chain: %d vertices (%s), trace: %d packets (%v)\n",
		len(ch.Vertices), mode, tr.Len(), tr.Duration())
	if len(cfg.Paths) > 0 {
		for ci, name := range ch.Classes() {
			var hops []string
			for _, v := range ch.PathFor(uint8(ci)) {
				hops = append(hops, v.Spec.Name)
			}
			fmt.Printf("path %-6s root -> %s -> sink\n", name, strings.Join(hops, " -> "))
		}
	}
	elapsed := ch.RunTrace(tr, *tt.settle)
	if *live {
		if !ch.AwaitDrained(30 * time.Second) {
			fmt.Fprintln(os.Stderr, "chcd: warning: chain did not fully drain")
		}
		if adminSrv != nil {
			adminSrv.Close() // the run is over; stop admin mutations before teardown
		}
		ch.Stop()
	}

	fmt.Printf("\nroot:  injected=%d deleted=%d dropped=%d log=%d\n",
		ch.Root.Injected, ch.Root.Deleted, ch.Root.Dropped, ch.Root.LogSize())
	for _, s := range ch.Stores {
		fmt.Printf("%-12s ops=%-8d async=%-6d keys=%d\n",
			s.Name, s.OpsServed, s.AsyncServed, s.Engine().Len())
	}
	for _, v := range ch.Vertices {
		for _, in := range v.Instances {
			fmt.Printf("%-12s processed=%-8d suppressed=%-6d bytes=%d\n",
				v.Spec.Name, in.Processed, in.Suppressed, in.BytesProcessed)
		}
		s := ch.Metrics.Get("proc." + v.Spec.Name)
		fmt.Printf("%-12s proc p50=%v p95=%v\n", v.Spec.Name, s.Percentile(50), s.Percentile(95))
	}
	fmt.Printf("sink:  received=%d duplicates=%d\n", ch.Sink.Received, ch.Sink.Duplicates)
	if len(cfg.Paths) > 0 {
		for ci, name := range ch.Classes() {
			fmt.Printf("class %-6s injected=%-8d deleted=%-8d sink=%d\n", name,
				ch.Root.InjectedByClass[ci], ch.Root.DeletedByClass[ci],
				ch.Sink.ReceivedByClass[uint8(ci)])
		}
	}
	e2e := ch.Metrics.Get("total.chain")
	fmt.Printf("chain: e2e p50=%v p95=%v\n", e2e.Percentile(50), e2e.Percentile(95))
	status := ctl.Status()
	for _, cs := range status.Checkpoints {
		fmt.Printf("ckpt:  %-8s taken=%d retained=%d torn=%d rejected=%d last=%.12s…\n",
			cs.Shard, cs.Taken, cs.Retained, cs.Torn, cs.Rejected, cs.LastID)
	}
	fmt.Printf("ctrl:  specs=%d actions=%d autoscaler evals=%d actions=%d\n",
		status.SpecsApplied, status.TotalActions, status.AutoscalerEvals, status.AutoscalerActions)
	if status.AutoscalerLast != "" {
		fmt.Printf("ctrl:  last autoscaler decision: %s\n", status.AutoscalerLast)
	}
	if n := ch.Metrics.AlertCount("scanner-detected"); n > 0 {
		fmt.Printf("alerts: %d scanners detected\n", n)
	}
	if n := ch.Metrics.AlertCount("trojan-detected"); n > 0 {
		fmt.Printf("alerts: %d trojans detected\n", n)
	}

	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1
	}
	pps := float64(ch.Root.Injected) / secs
	goodputBps := float64(ch.Sink.Bytes) * 8 / secs
	fmt.Printf("rate:  %.0f pkts/s ingest, %.2f Gbps goodput over %.2fs (%s clock)\n",
		pps, goodputBps/1e9, secs, mode)
	if *live {
		fmt.Printf("burst: root bursts=%d arena reuse=%d store burst rpcs=%d\n",
			ch.Root.Bursts, ch.Metrics.Counter("arena.reuse"), ch.Metrics.Counter("client.burst_rpcs"))
	}

	if *jsonPath != "" {
		report := makeReport(ch, status, mode, secs, tr.Len())
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fatal(err)
		}
	}
	if *minPPS > 0 && pps < *minPPS {
		fmt.Fprintf(os.Stderr, "chcd: sustained rate %.0f pkts/s below required %.0f\n", pps, *minPPS)
		os.Exit(1)
	}
}

// runReport is the -json output: the live-mode perf artifact CI records.
type runReport struct {
	Mode string `json:"mode"`
	// Controller is the control-plane status block: current spec, the
	// recent reconcile actions, and the autoscaler decision counters the
	// live-soak CI gate asserts on.
	Controller   runtime.ControllerStatus `json:"controller"`
	ElapsedSec   float64                  `json:"elapsed_sec"`
	Offered      int                      `json:"offered_pkts"`
	Injected     uint64                   `json:"injected"`
	Deleted      uint64                   `json:"deleted"`
	LogResidue   int                      `json:"log_residue"`
	SinkReceived uint64                   `json:"sink_received"`
	SinkDups     uint64                   `json:"sink_duplicates"`
	PktsPerSec   float64                  `json:"pkts_per_sec"`
	GoodputGbps  float64                  `json:"goodput_gbps"`
	P50us        float64                  `json:"latency_p50_us"`
	P95us        float64                  `json:"latency_p95_us"`
	P99us        float64                  `json:"latency_p99_us"`
	// Burst hot-path counters (live mode; zero on the DES by
	// construction): the CI gate asserts all three are nonzero so a
	// config drift that silently disables batching fails the build.
	RootBursts      uint64 `json:"root_bursts"`
	ArenaReuse      uint64 `json:"arena_reuse"`
	ClientBurstRPCs uint64 `json:"client_burst_rpcs"`
	// Cross-node transport counters (net mode; zero elsewhere): the
	// multi-process CI gate asserts the run really crossed sockets.
	RemoteMsgs  uint64 `json:"remote_msgs"`
	RemoteCalls uint64 `json:"remote_calls"`
	RemoteBytes uint64 `json:"remote_bytes"`
}

// makeReport assembles the machine-readable run report from a finished
// (or drained) chain.
func makeReport(ch *runtime.Chain, status runtime.ControllerStatus, mode string, secs float64, offered int) runReport {
	e2e := ch.Metrics.Get("total.chain")
	ns := ch.NetStats()
	return runReport{
		Mode:            mode,
		Controller:      status,
		ElapsedSec:      secs,
		Offered:         offered,
		Injected:        ch.Root.Injected,
		Deleted:         ch.Root.Deleted,
		LogResidue:      ch.Root.LogSize(),
		SinkReceived:    ch.Sink.Received,
		SinkDups:        ch.Sink.Duplicates,
		PktsPerSec:      float64(ch.Root.Injected) / secs,
		GoodputGbps:     float64(ch.Sink.Bytes) * 8 / secs / 1e9,
		P50us:           float64(e2e.Percentile(50).Nanoseconds()) / 1e3,
		P95us:           float64(e2e.Percentile(95).Nanoseconds()) / 1e3,
		P99us:           float64(e2e.Percentile(99).Nanoseconds()) / 1e3,
		RootBursts:      ch.Root.Bursts,
		ArenaReuse:      ch.Metrics.Counter("arena.reuse"),
		ClientBurstRPCs: ch.Metrics.Counter("client.burst_rpcs"),
		RemoteMsgs:      ns.RemoteMsgs,
		RemoteCalls:     ns.RemoteCalls,
		RemoteBytes:     ns.RemoteBytes,
	}
}

// startAdmin serves the controller admin API: the declarative mutation
// path (POST /spec), the drain verb, and the observed spec/status reads.
// It binds synchronously (so a bad address fails the run up front) and
// serves in the background for the lifetime of the run.
func startAdmin(addr string, ctl *runtime.Controller) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /spec", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ctl.CurrentSpec())
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ctl.Status())
	})
	mux.HandleFunc("POST /spec", func(w http.ResponseWriter, r *http.Request) {
		var spec runtime.DeploymentSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		actions, err := ctl.ApplySpec(spec)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"applied": true, "actions": actions})
	})
	mux.HandleFunc("POST /drain/{vertex}", func(w http.ResponseWriter, r *http.Request) {
		actions, err := ctl.Drain(r.PathValue("vertex"))
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"drained": true, "actions": actions})
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(fmt.Errorf("admin listen: %w", err))
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	fmt.Printf("admin: controller API on http://%s (GET /spec, GET /status, POST /spec, POST /drain/{vertex})\n", ln.Addr())
	return srv
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chcd:", err)
	os.Exit(1)
}
