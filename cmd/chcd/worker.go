// chcd worker: host one node's share of a multi-process chain.
//
// Every worker builds the IDENTICAL chain from the shared config (same
// instance IDs, partition map and topology — the deployment is SPMD), but
// only the components homed on -node actually spawn here; traffic to and
// from components on other nodes crosses real TCP through the wire codec.
// Control verbs arriving over the admin API are likewise executed by
// every worker, with node-gated effectors ensuring each side effect
// happens exactly once cluster-wide.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"chc/internal/runtime"
)

func workerMain(args []string) {
	fs := flag.NewFlagSet("chcd worker", flag.ExitOnError)
	cfgPath := fs.String("config", "", "chain config JSON with a \"nodes\" section (required)")
	node := fs.String("node", "", "node name this process hosts (required)")
	adminAddr := fs.String("admin", "", "admin API address (overrides the node's \"admin\" in the config)")
	ct := addChainTuning(fs)
	fs.Parse(args)

	cfg := loadConfig(*cfgPath)
	if len(cfg.Nodes) == 0 {
		fatal(fmt.Errorf("config has no nodes section (worker mode needs one)"))
	}
	if *node == "" {
		fatal(fmt.Errorf("-node is required"))
	}
	admin := *adminAddr
	if admin == "" {
		admin = cfg.adminOf(*node)
	}
	if admin == "" {
		fatal(fmt.Errorf("node %q has no admin address (set \"admin\" in the config or pass -admin)", *node))
	}

	ccfg := runtime.NetChainConfig(cfg.nodeSpecs(), *node)
	ct.apply(cfg, &ccfg)
	ch := buildChain(cfg, ccfg)
	fmt.Printf("worker %s: chain up (%d vertices, %d shards), netnet listening, admin on %s\n",
		*node, len(ch.Vertices), len(ch.Stores), admin)

	srv := startWorkerAdmin(admin, ch, *node)
	_ = srv
	select {} // serve until killed (the coordinator or operator owns our lifetime)
}

// failoverReq is the admin failover verb: replace instance ID with a
// fresh one. Rehome, when set, re-homes the REPLACEMENT's endpoint to the
// named node before the failover runs, so the new instance spawns there —
// the node-level recovery path after a worker dies. Every worker must
// receive the same verb (SPMD); each computes the same replacement ID and
// endpoint, so the re-homing and the splitter redirect agree everywhere
// while only the new home starts the instance and requests root replay.
type failoverReq struct {
	Instance uint16 `json:"instance"`
	Rehome   string `json:"rehome"`
}

// startWorkerAdmin serves the controller admin API plus the worker verbs:
// GET /health, POST /run (root-owner node only), POST /failover.
func startWorkerAdmin(addr string, ch *runtime.Chain, node string) *http.Server {
	ctl := ch.Controller()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /health", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"node": node, "ok": true})
	})
	mux.HandleFunc("GET /spec", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ctl.CurrentSpec())
	})
	mux.HandleFunc("GET /status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ctl.Status())
	})
	mux.HandleFunc("GET /netstats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, ch.NetStats())
	})
	mux.HandleFunc("POST /spec", func(w http.ResponseWriter, r *http.Request) {
		var spec runtime.DeploymentSpec
		if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		actions, err := ctl.ApplySpec(spec)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"applied": true, "actions": actions})
	})
	mux.HandleFunc("POST /drain/{vertex}", func(w http.ResponseWriter, r *http.Request) {
		actions, err := ctl.Drain(r.PathValue("vertex"))
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"drained": true, "actions": actions})
	})
	mux.HandleFunc("POST /failover", func(w http.ResponseWriter, r *http.Request) {
		var req failoverReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		v, inst := findInstance(ch, req.Instance)
		if inst == nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("no instance %d", req.Instance)})
			return
		}
		if req.Rehome != "" {
			// The replacement's ID is the next global instance ID; every
			// worker has executed the same mutation history, so they all
			// compute the same one and install the same mapping.
			nextEP := fmt.Sprintf("v%d.i%d", v.ID, maxInstanceID(ch)+1)
			ch.NodeMap().Reassign(nextEP, req.Rehome)
		}
		nu := ctl.Failover(inst)
		writeJSON(w, http.StatusOK, map[string]any{
			"replaced": inst.ID, "replacement": nu.ID, "endpoint": nu.Endpoint,
			"home": ch.NodeMap().NodeOf(nu.Endpoint),
		})
	})
	mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		var req workerRunReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		report, err := workerRun(ch, req)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, report)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal(fmt.Errorf("admin listen: %w", err))
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return srv
}

// workerRunReq parameterizes the trace a /run verb offers to the chain.
type workerRunReq struct {
	Flows    int     `json:"flows"`
	Gbps     int64   `json:"gbps"`
	UDPFrac  float64 `json:"udp_frac"`
	SettleMs int     `json:"settle_ms"`
	DrainSec int     `json:"drain_sec"`
}

// workerRun paces a generated trace through the chain and reports. Only
// the node hosting the root can inject (the pacer feeds the root
// directly), so other nodes reject the verb — the coordinator sends it to
// the root owner. Single-shot: the chain is stopped after the run so the
// report's counters are stable.
func workerRun(ch *runtime.Chain, req workerRunReq) (*runReport, error) {
	if !ch.OwnsEndpoint(ch.Root.Endpoint) {
		return nil, fmt.Errorf("this node does not host the root; send /run to its owner")
	}
	if req.Flows <= 0 {
		req.Flows = 300
	}
	if req.Gbps <= 0 {
		req.Gbps = 2
	}
	if req.SettleMs <= 0 {
		req.SettleMs = 200
	}
	if req.DrainSec <= 0 {
		req.DrainSec = 30
	}
	tt := traceTuning{
		tracePath: new(string), flows: &req.Flows, gbps: &req.Gbps,
		udpFrac: &req.UDPFrac, settle: new(time.Duration),
	}
	tr := tt.load(ch.Config().Seed)
	elapsed := ch.RunTrace(tr, time.Duration(req.SettleMs)*time.Millisecond)
	drained := ch.AwaitDrained(time.Duration(req.DrainSec) * time.Second)
	if !drained {
		fmt.Fprintln(os.Stderr, "chcd worker: warning: chain did not fully drain")
	}
	ch.Stop()
	secs := elapsed.Seconds()
	if secs <= 0 {
		secs = 1
	}
	report := makeReport(ch, ch.Controller().Status(), "net", secs, tr.Len())
	return &report, nil
}

// findInstance locates an instance (and its vertex) by global ID.
func findInstance(ch *runtime.Chain, id uint16) (*runtime.Vertex, *runtime.Instance) {
	for _, v := range ch.Vertices {
		for _, in := range v.Instances {
			if in.ID == id {
				return v, in
			}
		}
	}
	return nil, nil
}

// maxInstanceID is the highest instance ID allocated so far.
func maxInstanceID(ch *runtime.Chain) uint16 {
	var max uint16
	for _, v := range ch.Vertices {
		for _, in := range v.Instances {
			if in.ID > max {
				max = in.ID
			}
		}
	}
	return max
}
