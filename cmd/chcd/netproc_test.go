// End-to-end multi-process test: build the real chcd binary, span one
// chain across two worker OS processes plus a coordinator over loopback
// TCP, then SIGKILL a worker mid-run and require the coordinator's
// node-level failover to recover every packet (Fig 4/6 across a real
// socket, per DESIGN.md §12).
package main

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// freePorts reserves n distinct loopback ports by listening and closing.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	lns := make([]net.Listener, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("reserve port: %v", err)
		}
		lns[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range lns {
		ln.Close()
	}
	return ports
}

func TestMultiProcessFailoverReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns OS processes and paces a wall-clock trace")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "chcd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build chcd: %v\n%s", err, out)
	}

	p := freePorts(t, 4)
	cfgPath := filepath.Join(dir, "fork-net.json")
	cfg := fmt.Sprintf(`{
  "vertices": [
    {"name": "nat", "nf": "nat", "instances": 2, "backend": "chc", "mode": "eocna"},
    {"name": "ids", "nf": "portscan", "backend": "chc", "mode": "eocna"},
    {"name": "lb", "nf": "lb", "instances": 2, "backend": "chc", "mode": "eocna"}
  ],
  "paths": [
    {"class": "tcp", "vertices": ["nat", "lb"]},
    {"class": "udp", "vertices": ["ids", "lb"]}
  ],
  "nodes": [
    {"name": "w1", "addr": "127.0.0.1:%d", "admin": "127.0.0.1:%d",
     "endpoints": ["root0", "sink", "store0", "driver", "framework", "v1", "v2", "v3"]},
    {"name": "w2", "addr": "127.0.0.1:%d", "admin": "127.0.0.1:%d",
     "endpoints": ["v1.i2"]}
  ]
}`, p[0], p[1], p[2], p[3])
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	w2Admin := fmt.Sprintf("127.0.0.1:%d", p[3])

	startWorker := func(node string) *exec.Cmd {
		cmd := exec.Command(bin, "worker", "-config", cfgPath, "-node", node)
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatalf("start worker %s: %v", node, err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		return cmd
	}
	startWorker("w1")
	w2 := startWorker("w2")

	reportPath := filepath.Join(dir, "report.json")
	coord := exec.Command(bin, "coordinator", "-config", cfgPath,
		"-flows", "2000", "-gbps", "1", "-json", reportPath)
	var coordOut strings.Builder
	coord.Stdout = &coordOut
	coord.Stderr = &coordOut
	if err := coord.Start(); err != nil {
		t.Fatalf("start coordinator: %v", err)
	}
	t.Cleanup(func() {
		coord.Process.Kill()
		coord.Wait()
	})

	// SIGKILL w2 once its instance is provably processing traffic: v1.i2
	// forwards every packet it handles across the socket back to w1, so a
	// rising sender-side RemoteMsgs means we are mid-stream, not pre-run.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			var ns struct {
				RemoteMsgs uint64 `json:"remote_msgs"`
			}
			resp, err := http.Get("http://" + w2Admin + "/netstats")
			if err == nil {
				json.NewDecoder(resp.Body).Decode(&ns)
				resp.Body.Close()
				if ns.RemoteMsgs > 500 {
					w2.Process.Signal(syscall.SIGKILL)
					return
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	done := make(chan error, 1)
	go func() { done <- coord.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("coordinator: %v\n%s", err, coordOut.String())
		}
	case <-time.After(3 * time.Minute):
		t.Fatalf("coordinator did not finish\n%s", coordOut.String())
	}
	<-killed

	if !strings.Contains(coordOut.String(), "worker w2 died") {
		t.Fatalf("coordinator never detected the killed worker:\n%s", coordOut.String())
	}

	raw, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	var rep struct {
		Injected    uint64 `json:"injected"`
		Deleted     uint64 `json:"deleted"`
		LogResidue  uint64 `json:"log_residue"`
		SinkDups    uint64 `json:"sink_duplicates"`
		RemoteMsgs  uint64 `json:"remote_msgs"`
		RemoteBytes uint64 `json:"remote_bytes"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("parse report: %v\n%s", err, raw)
	}
	if rep.Injected == 0 {
		t.Fatal("no packets injected")
	}
	if rep.Deleted != rep.Injected || rep.LogResidue != 0 {
		t.Errorf("conservation violated after node failover: injected=%d deleted=%d residue=%d",
			rep.Injected, rep.Deleted, rep.LogResidue)
	}
	if rep.SinkDups != 0 {
		t.Errorf("sink saw %d duplicates", rep.SinkDups)
	}
	if rep.RemoteMsgs == 0 {
		t.Errorf("run never crossed a socket: remote_msgs=0 (bytes=%d)", rep.RemoteBytes)
	}
}
