// chcd coordinator: drive a multi-process deployment's workers.
//
// The coordinator owns the deployment's control plane from the outside:
// it waits for every worker's admin API to come up, optionally broadcasts
// a DeploymentSpec, starts the run on the root-owner worker, and watches
// worker health while the run is in flight. When a worker dies mid-run
// (crash, SIGKILL, OOM), the coordinator broadcasts failover verbs for
// every instance the dead node hosted to the survivors — re-homing the
// replacements onto the root owner's node — which is exactly the paper's
// §5.4 NF-failover story executed across real process boundaries.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"chc/internal/transport"
)

func coordinatorMain(args []string) {
	fs := flag.NewFlagSet("chcd coordinator", flag.ExitOnError)
	cfgPath := fs.String("config", "", "chain config JSON with a \"nodes\" section (required)")
	specPath := fs.String("spec", "", "DeploymentSpec JSON to broadcast to every worker before the run")
	flows := fs.Int("flows", 300, "generated trace connections")
	gbps := fs.Int64("gbps", 2, "offered load in Gbps")
	udpFrac := fs.Float64("udp-frac", 0, "fraction of generated flows as UDP")
	settleMs := fs.Int("settle-ms", 200, "post-trace settle time (ms) on the root owner")
	drainSec := fs.Int("drain-sec", 30, "drain budget (s) on the root owner")
	upTimeout := fs.Duration("up-timeout", 30*time.Second, "how long to wait for all workers' /health")
	jsonPath := fs.String("json", "", "write the run report to this path (- for stdout)")
	minPPS := fs.Float64("min-pps", 0, "exit nonzero if sustained ingest pkts/s falls below this")
	fs.Parse(args)

	cfg := loadConfig(*cfgPath)
	if len(cfg.Nodes) == 0 {
		fatal(fmt.Errorf("config has no nodes section (coordinator mode needs one)"))
	}
	nm := transport.NewNodeMap(cfg.nodeSpecs())
	rootNode := nm.NodeOf("root0")
	if cfg.adminOf(rootNode) == "" {
		fatal(fmt.Errorf("root-owner node %q has no admin address", rootNode))
	}

	// Phase 1: wait for every worker.
	deadline := time.Now().Add(*upTimeout)
	for _, n := range cfg.Nodes {
		for {
			if err := getJSON(n.Admin, "/health", nil); err == nil {
				break
			} else if time.Now().After(deadline) {
				fatal(fmt.Errorf("worker %s (%s) not healthy within %v: %v", n.Name, n.Admin, *upTimeout, err))
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	fmt.Printf("coordinator: %d workers healthy, root on %s\n", len(cfg.Nodes), rootNode)

	// Phase 2: reconcile the declared spec on every worker (SPMD: each
	// applies the same mutations; node-gated effectors keep side effects
	// exactly-once cluster-wide).
	if *specPath != "" {
		raw, err := os.ReadFile(*specPath)
		if err != nil {
			fatal(err)
		}
		for _, n := range cfg.Nodes {
			if err := postJSONRaw(n.Admin, "/spec", raw, nil); err != nil {
				fatal(fmt.Errorf("apply spec on %s: %w", n.Name, err))
			}
		}
		fmt.Printf("coordinator: spec applied on all %d workers\n", len(cfg.Nodes))
	}

	// Phase 3: run on the root owner while watching everyone's health.
	runReq := workerRunReq{Flows: *flows, Gbps: *gbps, UDPFrac: *udpFrac,
		SettleMs: *settleMs, DrainSec: *drainSec}
	reportCh := make(chan *runReport, 1)
	errCh := make(chan error, 1)
	go func() {
		var rep runReport
		if err := postJSON(cfg.adminOf(rootNode), "/run", runReq, &rep); err != nil {
			errCh <- err
			return
		}
		reportCh <- &rep
	}()

	dead := map[string]bool{}
	var report *runReport
watch:
	for {
		select {
		case report = <-reportCh:
			break watch
		case err := <-errCh:
			fatal(fmt.Errorf("run on %s: %w", rootNode, err))
		case <-time.After(250 * time.Millisecond):
			for _, n := range cfg.Nodes {
				if dead[n.Name] || n.Name == rootNode {
					continue
				}
				if err := getJSON(n.Admin, "/health", nil); err != nil {
					dead[n.Name] = true
					fmt.Printf("coordinator: worker %s died (%v); failing its instances over to %s\n",
						n.Name, err, rootNode)
					failoverNode(cfg, n, rootNode, dead)
				}
			}
		}
	}

	// Fold the surviving non-root workers' sender-side net counters into the
	// report: the root owner only sees its own outbound frames, but e.g. a
	// remote instance's store RPCs originate on ITS node.
	for _, n := range cfg.Nodes {
		if dead[n.Name] || n.Name == rootNode {
			continue
		}
		var ns netStats
		if err := getJSON(n.Admin, "/netstats", &ns); err != nil {
			fmt.Fprintf(os.Stderr, "chcd coordinator: netstats from %s: %v\n", n.Name, err)
			continue
		}
		report.RemoteMsgs += ns.RemoteMsgs
		report.RemoteCalls += ns.RemoteCalls
		report.RemoteBytes += ns.RemoteBytes
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *jsonPath == "-" || *jsonPath == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("coordinator: run complete: injected=%d deleted=%d residue=%d dups=%d remote_msgs=%d remote_calls=%d\n",
		report.Injected, report.Deleted, report.LogResidue, report.SinkDups,
		report.RemoteMsgs, report.RemoteCalls)
	if *minPPS > 0 && report.PktsPerSec < *minPPS {
		fmt.Fprintf(os.Stderr, "chcd coordinator: sustained rate %.0f pkts/s below required %.0f\n",
			report.PktsPerSec, *minPPS)
		os.Exit(1)
	}
}

// netStats mirrors netnet.NetStats's JSON shape (the /netstats verb body).
type netStats struct {
	RemoteMsgs  uint64 `json:"remote_msgs"`
	RemoteCalls uint64 `json:"remote_calls"`
	RemoteBytes uint64 `json:"remote_bytes"`
}

// failoverNode broadcasts a failover verb for every instance endpoint the
// dead node declared (entries of the form "vV.iI") to all surviving
// workers, re-homing each replacement onto rehome. Every survivor must
// see every verb in the same order (SPMD mutation history).
func failoverNode(cfg configJSON, deadNode nodeJSON, rehome string, dead map[string]bool) {
	for _, ep := range deadNode.Endpoints {
		var v, i int
		if n, _ := fmt.Sscanf(ep, "v%d.i%d", &v, &i); n != 2 {
			continue // a prefix or framework endpoint, not an instance
		}
		req := failoverReq{Instance: uint16(i), Rehome: rehome}
		for _, n := range cfg.Nodes {
			if dead[n.Name] || n.Name == deadNode.Name {
				continue
			}
			if err := postJSON(n.Admin, "/failover", req, nil); err != nil {
				fmt.Fprintf(os.Stderr, "chcd coordinator: failover of %s on %s: %v\n", ep, n.Name, err)
			}
		}
	}
}

// --- small HTTP JSON helpers (admin API client) ------------------------------

var adminClient = &http.Client{Timeout: 10 * time.Minute}

func getJSON(host, path string, out any) error {
	resp, err := adminClient.Get("http://" + host + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s%s: %s", host, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func postJSON(host, path string, body any, out any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return postJSONRaw(host, path, raw, out)
}

func postJSONRaw(host, path string, raw []byte, out any) error {
	resp, err := adminClient.Post("http://"+host+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := readAllLimited(resp)
		return fmt.Errorf("%s%s: %s: %s", host, path, resp.Status, strings.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func readAllLimited(resp *http.Response) (string, error) {
	buf := make([]byte, 4096)
	n, err := resp.Body.Read(buf)
	return string(buf[:n]), err
}
