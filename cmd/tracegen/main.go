// Command tracegen emits synthetic packet traces in the repository's trace
// file format, optionally implanting portscan activity and Trojan
// signatures for the security experiments.
//
// Usage:
//
//	tracegen -flows 2000 -out trace.chct
//	tracegen -flows 500 -trojans 11 -scan 64 -out attack.chct
//	tracegen -flows 800 -udp-frac 0.4 -gbps 5 -udp-gbps 3 -out mixed.chct
package main

import (
	"flag"
	"fmt"
	"os"

	"chc/internal/trace"
)

func main() {
	flows := flag.Int("flows", 2000, "TCP connections to generate")
	pktsPerFlow := flag.Int("pkts-per-flow", 32, "mean packets per flow")
	payload := flag.Int("payload", 1394, "median data payload bytes")
	hosts := flag.Int("hosts", 64, "internal host count")
	servers := flag.Int("servers", 32, "external server count")
	seed := flag.Int64("seed", 42, "deterministic seed")
	trojans := flag.Int("trojans", 0, "Trojan signatures to implant")
	scan := flag.Int("scan", 0, "portscan probes to implant")
	rate := flag.Int64("gbps", 10, "pacing rate in Gbps (TCP class when -udp-gbps is set)")
	udpFrac := flag.Float64("udp-frac", 0, "fraction of flows generated as UDP exchanges (traffic-class mix for DAG forks)")
	udpPayload := flag.Int("udp-payload", 256, "median UDP response payload bytes")
	udpRate := flag.Int64("udp-gbps", 0, "UDP-class pacing rate in Gbps; 0 paces all classes together at -gbps")
	out := flag.String("out", "trace.chct", "output file")
	flag.Parse()

	tr := trace.Generate(trace.Config{
		Seed:             *seed,
		Flows:            *flows,
		PktsPerFlowMean:  *pktsPerFlow,
		PayloadMedian:    *payload,
		Hosts:            *hosts,
		Servers:          *servers,
		UDPFrac:          *udpFrac,
		UDPPayloadMedian: *udpPayload,
	})
	if *trojans > 0 {
		sigs := trace.InjectTrojan(tr, *trojans, *seed+1)
		fmt.Printf("implanted %d trojan signatures\n", len(sigs))
	}
	if *scan > 0 {
		trace.InjectPortscan(tr, trace.HostIP(250), *scan, 0.9, tr.Len()/2, *seed+2)
		fmt.Printf("implanted %d portscan probes from %x\n", *scan, trace.HostIP(250))
	}
	if *udpRate > 0 {
		tr.PaceClasses(trace.ClassOfProto, []int64{*rate * 1_000_000_000, *udpRate * 1_000_000_000})
	} else {
		tr.Pace(*rate * 1_000_000_000)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if _, err := tr.WriteTo(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *udpFrac > 0 {
		var udp int
		for _, e := range tr.Events {
			if trace.ClassOfProto(e.Pkt) == 1 {
				udp++
			}
		}
		fmt.Printf("class mix: %d tcp, %d udp packets\n", tr.Len()-udp, udp)
	}
	fmt.Printf("%s: %d packets, %d bytes wire, %v duration\n",
		*out, tr.Len(), tr.Bytes(), tr.Duration())
}
