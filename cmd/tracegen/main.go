// Command tracegen emits synthetic packet traces in the repository's trace
// file format, optionally implanting portscan activity and Trojan
// signatures for the security experiments.
//
// Usage:
//
//	tracegen -flows 2000 -out trace.chct
//	tracegen -flows 500 -trojans 11 -scan 64 -out attack.chct
package main

import (
	"flag"
	"fmt"
	"os"

	"chc/internal/trace"
)

func main() {
	flows := flag.Int("flows", 2000, "TCP connections to generate")
	pktsPerFlow := flag.Int("pkts-per-flow", 32, "mean packets per flow")
	payload := flag.Int("payload", 1394, "median data payload bytes")
	hosts := flag.Int("hosts", 64, "internal host count")
	servers := flag.Int("servers", 32, "external server count")
	seed := flag.Int64("seed", 42, "deterministic seed")
	trojans := flag.Int("trojans", 0, "Trojan signatures to implant")
	scan := flag.Int("scan", 0, "portscan probes to implant")
	rate := flag.Int64("gbps", 10, "pacing rate in Gbps")
	out := flag.String("out", "trace.chct", "output file")
	flag.Parse()

	tr := trace.Generate(trace.Config{
		Seed:            *seed,
		Flows:           *flows,
		PktsPerFlowMean: *pktsPerFlow,
		PayloadMedian:   *payload,
		Hosts:           *hosts,
		Servers:         *servers,
	})
	if *trojans > 0 {
		sigs := trace.InjectTrojan(tr, *trojans, *seed+1)
		fmt.Printf("implanted %d trojan signatures\n", len(sigs))
	}
	if *scan > 0 {
		trace.InjectPortscan(tr, trace.HostIP(250), *scan, 0.9, tr.Len()/2, *seed+2)
		fmt.Printf("implanted %d portscan probes from %x\n", *scan, trace.HostIP(250))
	}
	tr.Pace(*rate * 1_000_000_000)

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer f.Close()
	if _, err := tr.WriteTo(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d packets, %d bytes wire, %v duration\n",
		*out, tr.Len(), tr.Bytes(), tr.Duration())
}
