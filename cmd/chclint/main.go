// Command chclint is the repo's domain-specific static-analysis gate: a
// multichecker over the internal/analysis suite, enforcing the
// DES-determinism, transport-discipline and controller-only-mutation
// invariants as build failures (DESIGN.md §9).
//
// Usage:
//
//	chclint [-list] [-v] [package patterns]
//
// Patterns are module-relative ("./...", "./internal/runtime"); no
// pattern means the whole module. Exit status: 0 clean, 1 findings,
// 2 usage or load failure. Suppressions require a reason:
//
//	//chc:allow <analyzer> -- <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"chc/internal/analysis"
	"chc/internal/analysis/driver"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "verbose: surface package load diagnostics")
	flag.Parse()

	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-20s %s\n", a.Name, a.Doc)
		}
		return
	}

	moduleDir, modulePath, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "chclint:", err)
		os.Exit(2)
	}
	findings, err := driver.Run(driver.Config{
		ModuleDir:      moduleDir,
		ModulePath:     modulePath,
		Patterns:       flag.Args(),
		KnownAnalyzers: analysis.Names(),
		Verbose:        *verbose,
	}, analysis.Suite())
	if err != nil {
		fmt.Fprintln(os.Stderr, "chclint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		rel := f
		if r, err := filepath.Rel(moduleDir, f.Pos.Filename); err == nil {
			rel.Pos.Filename = r
		}
		fmt.Println(rel.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "chclint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// findModule walks up from the working directory to the enclosing go.mod
// and reads its module path.
func findModule() (dir, path string, err error) {
	dir, err = os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			if p := modulePathOf(data); p != "" {
				return dir, p, nil
			}
			return "", "", fmt.Errorf("no module directive in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}

func modulePathOf(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return ""
}
