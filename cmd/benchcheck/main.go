// Command benchcheck compares two chcbench -json result files and fails
// on goodput regression. It is the CI perf gate: BENCH_baseline.json is
// checked into the repository, CI regenerates a fresh run per commit,
// and a headline experiment losing more than the allowed fraction of
// goodput fails the build.
//
// Cells expressed in Gbps (goodput, higher is better), ms (recovery
// time, lower is better) and allocs/op (hot-path allocation cost, lower
// is better) are compared; the regression direction flips accordingly.
// The headline DES experiments are deterministic — same seed, same
// virtual time, same numbers on any machine — so the threshold only has
// to absorb intentional calibration changes, not host noise. Wall-clock
// experiments (dstore, live) are excluded by default for exactly that
// reason; livehot IS guarded because its allocs/op cells count allocator
// events, which are steady-state stable on any machine, while its pkts/s
// cells stay unsuffixed (informational, never compared). netproc is
// guarded the same way: its presence and row structure are enforced (the
// multi-process experiment cannot silently vanish from the baseline),
// but its goodput cell is wall-clock over loopback TCP and deliberately
// formatted as "Gbit/s" — not a compared "Gbps" cell — so machine noise
// cannot fail the gate; its correctness surface is the invariant rows
// and the CI net-gate job.
//
// Usage:
//
//	benchcheck -baseline BENCH_baseline.json -fresh BENCH_fresh.json
//	benchcheck -baseline ... -fresh ... -ids fig8,fig10,scale,dag,autoscale -max-regress 0.25
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result mirrors chcbench's jsonResult.
type result struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

func load(path string) (map[string]result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rs []result
	if err := json.Unmarshal(raw, &rs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]result, len(rs))
	for _, r := range rs {
		out[r.ID] = r
	}
	return out, nil
}

// gbpsCell parses "12.34Gbps" cells; ok is false for anything else.
func gbpsCell(s string) (float64, bool) {
	if !strings.HasSuffix(s, "Gbps") {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "Gbps"), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// msCell parses "1.234ms" duration cells (recovery times). Unlike goodput,
// durations regress UPWARD, so the comparison direction is inverted. Cells
// ending in Gbps also end in "s"; require the exact "ms" suffix with a
// parseable number before it.
func msCell(s string) (float64, bool) {
	if !strings.HasSuffix(s, "ms") || strings.HasSuffix(s, "Gbps") {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// allocsCell parses "1.03allocs/op" allocation-cost cells (the livehot
// experiment). Lower is better, and unlike the other cell types a
// baseline of zero is meaningful (a fully pooled path), so comparison
// may not gate on bv > 0.
func allocsCell(s string) (float64, bool) {
	if !strings.HasSuffix(s, "allocs/op") {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "allocs/op"), 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func main() {
	basePath := flag.String("baseline", "BENCH_baseline.json", "checked-in baseline results")
	freshPath := flag.String("fresh", "BENCH_fresh.json", "freshly generated results")
	idsFlag := flag.String("ids", "fig8,fig10,scale,dag,autoscale,rto,livehot,netproc", "comma-separated headline experiment ids to guard")
	maxRegress := flag.Float64("max-regress", 0.25, "maximum tolerated fractional regression")
	flag.Parse()

	base, err := load(*basePath)
	if err != nil {
		fatal(err)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fatal(err)
	}

	failures := 0
	compared := 0
	for _, id := range strings.Split(*idsFlag, ",") {
		id = strings.TrimSpace(id)
		idFailures := failures
		b, ok := base[id]
		if !ok {
			fmt.Printf("FAIL %s: missing from baseline (regenerate BENCH_baseline.json)\n", id)
			failures++
			continue
		}
		f, ok := fresh[id]
		if !ok {
			fmt.Printf("FAIL %s: missing from fresh results (experiment removed?)\n", id)
			failures++
			continue
		}
		if len(f.Rows) < len(b.Rows) {
			fmt.Printf("FAIL %s: fresh run has %d rows, baseline %d\n", id, len(f.Rows), len(b.Rows))
			failures++
			continue
		}
		for ri, brow := range b.Rows {
			frow := f.Rows[ri]
			for ci, bcell := range brow {
				if bv, ok := gbpsCell(bcell); ok && bv > 0 {
					if ci >= len(frow) {
						fmt.Printf("FAIL %s row %d: fresh row too short\n", id, ri)
						failures++
						continue
					}
					fv, ok := gbpsCell(frow[ci])
					if !ok {
						fmt.Printf("FAIL %s row %d col %d: %q is no longer a Gbps cell\n", id, ri, ci, frow[ci])
						failures++
						continue
					}
					compared++
					if fv < bv*(1.0-*maxRegress) {
						fmt.Printf("FAIL %s [%s]: goodput %.2fGbps regressed >%.0f%% from baseline %.2fGbps\n",
							id, strings.Join(brow[:1], ""), fv, *maxRegress*100, bv)
						failures++
					}
					continue
				}
				if bv, ok := msCell(bcell); ok && bv > 0 {
					if ci >= len(frow) {
						fmt.Printf("FAIL %s row %d: fresh row too short\n", id, ri)
						failures++
						continue
					}
					fv, ok := msCell(frow[ci])
					if !ok {
						fmt.Printf("FAIL %s row %d col %d: %q is no longer an ms cell\n", id, ri, ci, frow[ci])
						failures++
						continue
					}
					compared++
					// Durations: higher is worse.
					if fv > bv*(1.0+*maxRegress) {
						fmt.Printf("FAIL %s [%s]: recovery time %.3fms regressed >%.0f%% from baseline %.3fms\n",
							id, strings.Join(brow[:1], ""), fv, *maxRegress*100, bv)
						failures++
					}
					continue
				}
				if bv, ok := allocsCell(bcell); ok {
					if ci >= len(frow) {
						fmt.Printf("FAIL %s row %d: fresh row too short\n", id, ri)
						failures++
						continue
					}
					fv, ok := allocsCell(frow[ci])
					if !ok {
						fmt.Printf("FAIL %s row %d col %d: %q is no longer an allocs/op cell\n", id, ri, ci, frow[ci])
						failures++
						continue
					}
					compared++
					// Allocations: higher is worse. The extra half-alloc of
					// absolute slack keeps a near-zero baseline comparable
					// (0.00 * (1+r) tolerates nothing) while still catching
					// a path that grows a whole allocation per packet.
					if fv > bv*(1.0+*maxRegress)+0.5 {
						fmt.Printf("FAIL %s [%s]: %.2fallocs/op regressed from baseline %.2fallocs/op\n",
							id, strings.Join(brow[:1], ""), fv, bv)
						failures++
					}
				}
			}
		}
		if failures == idFailures {
			fmt.Printf("ok   %s\n", id)
		}
	}
	fmt.Printf("benchcheck: %d cells compared, %d failures\n", compared, failures)
	if compared == 0 {
		fmt.Println("FAIL: no comparable cells found (format drift?)")
		failures++
	}
	if failures > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(1)
}
