// Command chcbench regenerates the CHC paper's evaluation tables and
// figures (§7) on the simulation substrate.
//
// Usage:
//
//	chcbench                  # run everything at small scale
//	chcbench -scale full      # paper-like scale (slower)
//	chcbench -run fig8,fig11  # selected experiments
//	chcbench -list            # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chc/internal/experiments"
)

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	scale := flag.String("scale", "small", "small | full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	seed := flag.Int64("seed", 42, "deterministic seed")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, id := range experiments.Order {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.Small()
	if *scale == "full" {
		opts = experiments.Full()
	}
	opts.Seed = *seed

	var ids []string
	if *runFlag == "all" {
		ids = experiments.Order
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			id = strings.TrimSpace(id)
			if _, ok := all[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	for _, id := range ids {
		start := time.Now()
		tbl := all[id](opts)
		fmt.Println(tbl.String())
		fmt.Printf("  (%s in %.1fs wall)\n\n", id, time.Since(start).Seconds())
	}
}
