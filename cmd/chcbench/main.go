// Command chcbench regenerates the CHC paper's evaluation tables and
// figures (§7) on the simulation substrate.
//
// Usage:
//
//	chcbench                  # run everything at small scale
//	chcbench -scale full      # paper-like scale (slower)
//	chcbench -run fig8,fig11  # selected experiments
//	chcbench -list            # list experiment ids
//	chcbench -json out.json   # also write machine-readable results
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"chc/internal/experiments"
)

// jsonResult is one experiment's machine-readable record (the BENCH_*.json
// perf-trajectory format: stable ids and cells across runs, plus wall time).
type jsonResult struct {
	ID          string     `json:"id"`
	Title       string     `json:"title"`
	Header      []string   `json:"header"`
	Rows        [][]string `json:"rows"`
	Notes       []string   `json:"notes,omitempty"`
	WallSeconds float64    `json:"wall_seconds"`
}

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	scale := flag.String("scale", "small", "small | full")
	list := flag.Bool("list", false, "list experiment ids and exit")
	seed := flag.Int64("seed", 42, "deterministic seed")
	jsonPath := flag.String("json", "", "write results as JSON to this path")
	flag.Parse()

	all := experiments.All()
	if *list {
		for _, id := range experiments.Order {
			fmt.Println(id)
		}
		return
	}

	opts := experiments.Small()
	if *scale == "full" {
		opts = experiments.Full()
	}
	opts.Seed = *seed

	var ids []string
	if *runFlag == "all" {
		ids = experiments.Order
	} else {
		for _, id := range strings.Split(*runFlag, ",") {
			id = strings.TrimSpace(id)
			if _, ok := all[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	var results []jsonResult
	for _, id := range ids {
		start := time.Now()
		tbl := all[id](opts)
		wall := time.Since(start).Seconds()
		fmt.Println(tbl.String())
		fmt.Printf("  (%s in %.1fs wall)\n\n", id, wall)
		results = append(results, jsonResult{
			ID: tbl.ID, Title: tbl.Title, Header: tbl.Header,
			Rows: tbl.Rows, Notes: tbl.Notes, WallSeconds: wall,
		})
	}
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "chcbench: encode json:", err)
			os.Exit(1)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*jsonPath, buf, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "chcbench: write json:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d experiments)\n", *jsonPath, len(results))
	}
}
