// Package chc is a from-scratch Go reproduction of CHC, the NFV
// state-management framework from "Correctness and Performance for Stateful
// Chained Network Functions" (Khalid & Akella, NSDI 2019).
//
// CHC provides chain output equivalence (COE) for chains of stateful
// network functions: per- and cross-flow state lives in an external store
// with offloaded operations and scope-aware caching, packets carry logical
// clocks assigned at a chain root that also logs in-flight packets, and a
// set of metadata protocols (ownership handover, XOR commit vectors,
// duplicate-suppression logs, checkpoint+WAL recovery) keeps state correct
// through elastic scaling, straggler cloning, and failures of NF instances,
// roots and store instances.
//
// The datastore tier shards across N servers (ChainConfig.StoreShards)
// behind consistent-hash key partitioning, each shard checkpointing and
// recovering independently. Reconfiguration is declarative: the chain's
// Controller reconciles a submitted DeploymentSpec (per-vertex replica
// counts) into the minimal sequence of safe primitives, growing and
// shrinking vertex instance sets mid-run over the Fig 4 handover
// machinery, and Controller.StartAutoscaler drives the same path from a
// per-instance load band (DESIGN.md §5, §8).
//
// This package is the public facade. Typical use:
//
//	cfg := chc.DefaultChainConfig()
//	chain := chc.NewChain(cfg,
//	    chc.VertexSpec{Name: "nat", Make: func() chc.NF { return nat.New() }},
//	)
//	chain.Start()
//	chain.RunTrace(tr, time.Second)
//
// The deployment runs on a deterministic discrete-event simulation of the
// network (see DESIGN.md for the substitution rationale): virtual time,
// configurable link RTTs, and fail-stop crash injection. The store engine
// itself (chc/internal/store) is a real concurrent data structure.
package chc

import (
	"chc/internal/experiments"
	"chc/internal/nf"
	"chc/internal/packet"
	"chc/internal/runtime"
	"chc/internal/store"
	"chc/internal/trace"
	"chc/internal/transport"
)

// Core NF programming model.
type (
	// NF is a network function: state declarations plus per-packet
	// processing.
	NF = nf.NF
	// Ctx is the per-packet processing context handed to NF code.
	Ctx = nf.Ctx
	// Alert is a detection/action event surfaced by an NF.
	Alert = nf.Alert
	// Packet is a parsed packet plus CHC shim metadata.
	Packet = packet.Packet
	// FlowKey is the 5-tuple.
	FlowKey = packet.FlowKey
)

// State model.
type (
	// ObjDecl declares an NF state object: scope + access pattern drive the
	// Table 1 management strategy.
	ObjDecl = store.ObjDecl
	// Value is the store's tagged union value.
	Value = store.Value
	// Request is one offloaded state operation. NF code should not build
	// these directly anymore — declare typed handles instead; the raw form
	// remains for baselines and deployment seeding plumbing.
	Request = store.Request
	// Mode selects the state-management model (EO / EO+C / EO+C+NA).
	Mode = store.Mode
)

// Typed state handles: the declarative NF-facing state API. An NF registers
// each object once through a DeclSet at construction time and uses the
// returned handle in Process — the framework routes every call through the
// configured backend and picks the Table 1 strategy from the declaration.
type (
	// DeclSet accumulates an NF's state-object declarations.
	DeclSet = nf.DeclSet
	// Counter is an integer counter handle (Incr/IncrGet/Value).
	Counter = nf.Counter
	// Gauge is a per-key scalar handle (Set/Get/Delete/CAS).
	Gauge = nf.Gauge
	// Map is a field-table handle (Set/Incr/MinIncr/Snapshot).
	Map = nf.Map
	// Pool is a shared resource-list handle (Push/Pop).
	Pool = nf.Pool
	// NonDet draws replay-stable non-deterministic values (Appendix A).
	NonDet = nf.NonDet
	// Seeder applies raw seeding requests during deployment bring-up.
	Seeder = nf.Seeder
)

// Deployment.
type (
	// ChainConfig tunes a deployment (latencies, thread counts, protocol
	// switches like SyncDelete and XORCheck).
	ChainConfig = runtime.ChainConfig
	// VertexSpec declares one logical NF in the chain.
	VertexSpec = runtime.VertexSpec
	// Chain is a deployed physical chain.
	Chain = runtime.Chain
	// Vertex is a deployed logical NF with its instances and splitter.
	Vertex = runtime.Vertex
	// Instance is one physical NF instance.
	Instance = runtime.Instance
	// Metrics aggregates chain measurements.
	Metrics = runtime.Metrics
	// TopologySpec generalizes the linear chain into a policy DAG: one
	// ordered vertex path per traffic class, with the root's classifier
	// picking each packet's branch. Nil keeps the linear declaration order.
	TopologySpec = runtime.TopologySpec
	// PathSpec routes one traffic class through an ordered vertex subset.
	PathSpec = runtime.PathSpec
	// Trace is a packet trace.
	Trace = trace.Trace
	// TraceConfig drives synthetic trace generation.
	TraceConfig = trace.Config
)

// Execution substrates and multi-process deployment. ChainConfig.Substrate
// selects where the chain runs; on SubstrateNet, ChainConfig.Nodes places
// endpoints on named nodes and ChainConfig.Node makes one OS process host
// one node's share of the chain (DESIGN.md §12). The deprecated
// ChainConfig.Live bool remains as an alias for SubstrateLive.
type (
	// Substrate selects the execution substrate (sim / live / net).
	Substrate = runtime.Substrate
	// NodeSpec declares one node: name, dial address, hosted endpoints.
	NodeSpec = transport.NodeSpec
	// NodeMap resolves endpoints to nodes and nodes to addresses.
	NodeMap = transport.NodeMap
	// WireEnc is the canonical wire encoder handed to payload codecs.
	WireEnc = transport.WireEnc
	// WireDec is the canonical wire decoder handed to payload codecs.
	WireDec = transport.WireDec
)

// Substrates.
const (
	// SubstrateSim is the deterministic DES (the default, the oracle).
	SubstrateSim = runtime.SubstrateSim
	// SubstrateLive is real goroutines + wall-clock in one process.
	SubstrateLive = runtime.SubstrateLive
	// SubstrateNet is real TCP sockets between OS processes.
	SubstrateNet = runtime.SubstrateNet
)

// RegisterWireCodec registers the canonical wire codec for a payload type
// shipped between nodes on SubstrateNet. Every type sent as a message
// payload or call body across nodes must be registered (the wirecodec
// linter enforces this for the framework's own protocol types); tags are
// permanent protocol surface and must never be reused.
func RegisterWireCodec[T any](tag uint16, name string, enc func(*WireEnc, T), dec func(*WireDec) T) {
	transport.RegisterWire[T](tag, name, enc, dec)
}

// NewNodeMap indexes a node declaration list for endpoint resolution.
func NewNodeMap(nodes []NodeSpec) *NodeMap { return transport.NewNodeMap(nodes) }

// Control plane. Reconfiguration is declarative: build a DeploymentSpec
// (per-vertex replica counts), submit it to the chain's Controller, and
// the controller diffs it against the running deployment and emits the
// minimal sequence of safe primitives (consistent-hash scale-out,
// drain-and-retire scale-in, Fig 4 flow handovers) to converge. The raw
// imperative scaling methods on Chain are no longer exported —
// Controller.ApplySpec is the supported mutation path, and failure verbs
// (Failover, CloneStraggler) are controller-mediated.
type (
	// DeploymentSpec declares the desired deployment shape.
	DeploymentSpec = runtime.DeploymentSpec
	// VertexDesire is one vertex's desired replica count (and optional
	// mode restatement, validated immutable).
	VertexDesire = runtime.VertexDesire
	// Controller reconciles DeploymentSpecs against the running chain.
	Controller = runtime.Controller
	// ReconcileAction records one primitive emitted while converging.
	ReconcileAction = runtime.ReconcileAction
	// ControllerStatus is the admin-facing control-plane snapshot.
	ControllerStatus = runtime.ControllerStatus
	// AutoscalerConfig is the metrics-driven scaling policy: a target
	// per-instance load band with hysteresis and cooldown, bounded by
	// min/max replicas.
	AutoscalerConfig = runtime.AutoscalerConfig
	// Autoscaler is a running policy attached to a vertex.
	Autoscaler = runtime.Autoscaler
	// ReplicaSample is one point of an autoscaler's replica trajectory.
	ReplicaSample = runtime.ReplicaSample
)

// Backend kinds.
const (
	// BackendCHC externalizes state to the store (the paper's system).
	BackendCHC = runtime.BackendCHC
	// BackendTraditional keeps state NF-local (baseline "T").
	BackendTraditional = runtime.BackendTraditional
	// BackendLocking is the naive lock-RMW baseline.
	BackendLocking = runtime.BackendLocking
)

// State-management models (Figure 8/10 columns).
var (
	// ModeEO externalizes every operation (model #1).
	ModeEO = store.ModeEO
	// ModeEOC adds the Table 1 caching strategies (model #2).
	ModeEOC = store.ModeEOC
	// ModeEOCNA additionally skips ACK waits on non-blocking ops (model #3).
	ModeEOCNA = store.ModeEOCNA
)

// NewChain builds (but does not start) a chain deployment.
func NewChain(cfg ChainConfig, vertices ...VertexSpec) *Chain {
	return runtime.New(cfg, vertices...)
}

// DefaultChainConfig returns the calibrated defaults from DESIGN.md.
func DefaultChainConfig() ChainConfig { return runtime.DefaultChainConfig() }

// LiveChainConfig returns the calibration for live execution mode: the
// same chain code on real goroutines and wall-clock time instead of the
// deterministic simulation (DESIGN.md §7).
func LiveChainConfig() ChainConfig { return runtime.LiveChainConfig() }

// NetChainConfig returns the live calibration retargeted at real TCP
// sockets (DESIGN.md §12): nodes declares endpoint placement, node names
// the node THIS process hosts ("" runs every node in-process as a
// loopback cluster).
func NetChainConfig(nodes []NodeSpec, node string) ChainConfig {
	return runtime.NetChainConfig(nodes, node)
}

// GenerateTrace builds a synthetic, deterministic packet trace with the
// aggregate properties of the paper's campus-to-EC2 captures.
func GenerateTrace(cfg TraceConfig) *Trace { return trace.Generate(cfg) }

// DefaultTraceConfig mirrors a scaled-down Trace2.
func DefaultTraceConfig() TraceConfig { return trace.DefaultConfig() }

// Experiments exposes the paper's evaluation harness: map of experiment id
// to runner (see DESIGN.md §3 for the per-experiment index).
func Experiments() map[string]func(experiments.Opts) *experiments.Table {
	return experiments.All()
}

// ExperimentOrder is the canonical presentation order of experiment ids.
var ExperimentOrder = experiments.Order

// ExperimentOpts scales experiment runs.
type ExperimentOpts = experiments.Opts

// ExperimentTable is a rendered experiment result.
type ExperimentTable = experiments.Table

// SmallScale is the CI-friendly experiment scale.
func SmallScale() ExperimentOpts { return experiments.Small() }

// FullScale is the paper-like experiment scale.
func FullScale() ExperimentOpts { return experiments.Full() }
